//! Scenario × runtime-grid fuzzing with the determinism oracle.
//!
//! Every [`Scenario`] in the catalogue — dropouts, stragglers, byzantine silos, Zipf
//! skew, and their worst-case mix — must keep the streaming round engine's core
//! guarantee: training is **bitwise identical** across every `(threads, shards,
//! chunk_size)` grid point. Because all fault decisions are pure functions of
//! `(plan seed, round seed, silo[, user])`, a faulted round has no more scheduling
//! freedom than a clean one; any hidden shared state in the fault injection shows up
//! here as a bit difference. The grid sweep samples ≥ 32 (scenario × structure) cases,
//! and a property test adds random grid points on top.
//!
//! The degradation semantics themselves are asserted quantitatively:
//!
//! * a dropout round equals a plan-less round over the surviving silos with the global
//!   learning rate compensated by `|S| / |S_surviving|`;
//! * byzantine influence — even a `1e6`-scaled gradient — is bounded by the clipping
//!   norm: `‖p_byz − p_honest‖ ≤ global_lr · scale · 2·C·Σ_{corrupted (s,u)} w_{s,u}`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::core::algorithms::uldp_avg;
use uldp_fl::core::{
    ByzantineStrategy, FaultPlan, FlConfig, Method, SampleMask, Scenario, Trainer, TrainingHistory,
    WeightMatrix, WeightingStrategy,
};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::ml::{LinearClassifier, Model};
use uldp_fl::runtime::Runtime;

/// Collapses a history into a bit-exact fingerprint (parameters and metrics as raw bits).
fn history_bits(h: &TrainingHistory) -> Vec<u64> {
    let mut bits: Vec<u64> = h.final_parameters.iter().map(|p| p.to_bits()).collect();
    for r in &h.rounds {
        bits.push(r.round);
        bits.push(r.epsilon.to_bits());
        bits.push(r.test_accuracy.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        bits.push(r.test_loss.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        bits.push(r.c_index.map(|v| v.to_bits()).unwrap_or(u64::MAX));
    }
    bits
}

/// Two private ULDP-AVG rounds under the scenario's fault plan and allocation, at the
/// given runtime structure. Same dataset seed everywhere so only (scenario, structure)
/// varies.
fn train_scenario(
    scenario: &Scenario,
    threads: usize,
    shards: usize,
    chunk_size: usize,
) -> TrainingHistory {
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: 240,
            test_records: 40,
            allocation: scenario.allocation(),
            ..Default::default()
        },
    );
    let method = Method::UldpAvg { weighting: WeightingStrategy::RecordProportional };
    let mut config = FlConfig::recommended(method, dataset.num_silos);
    config.rounds = 2;
    config.local_epochs = 2;
    config.sigma = 1.0;
    config.user_sampling = 0.7;
    config.threads = threads;
    config.shards = shards;
    config.chunk_size = chunk_size;
    config.fault_plan = scenario.plan;
    let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    Trainer::new(config, dataset, model).run()
}

#[test]
fn every_catalogue_scenario_is_bitwise_identical_across_the_runtime_grid() {
    // 9 scenarios × 4 structure points = 36 sampled cases, each checked against the
    // scenario's own sequential single-shard single-chunk reference.
    let structures = [(2usize, 2usize, 1usize), (4, 1, 7), (2, 3, usize::MAX), (4, 2, 16)];
    let scenarios = Scenario::catalogue();
    let mut cases = 0usize;
    for scenario in &scenarios {
        let reference = history_bits(&train_scenario(scenario, 1, 1, usize::MAX));
        for &(threads, shards, chunk) in &structures {
            let run = history_bits(&train_scenario(scenario, threads, shards, chunk));
            assert_eq!(
                run, reference,
                "scenario {} diverged at threads={threads} shards={shards} chunk={chunk}",
                scenario.name
            );
            cases += 1;
        }
    }
    assert!(cases >= 32, "grid sweep must sample at least 32 cases, got {cases}");
}

#[test]
fn sparse_and_dense_masks_train_identically_across_the_scenario_catalogue() {
    // Dense-vs-sparse oracle on the training side: a round under a sub-sampling mask
    // must be a function of the *selection*, never of the mask's representation. 3 of
    // 20 users sampled keeps the index-list layout below the ¼ density threshold;
    // `densified()` is the same selection as dense flags. Every catalogue scenario
    // (dropouts, stragglers, byzantine corruption, skewed allocations) must produce
    // bitwise-identical parameters under both layouts, on a pooled structure point as
    // well as the sequential reference.
    let mask = SampleMask::from_sorted_indices(20, vec![3, 11, 17]);
    let dense = mask.densified();
    for scenario in &Scenario::catalogue() {
        let run = |threads: usize, shards: usize, chunk: usize, mask: &SampleMask| {
            let mut rng = StdRng::seed_from_u64(29);
            let dataset = creditcard::generate(
                &mut rng,
                &CreditcardConfig {
                    train_records: 200,
                    test_records: 40,
                    num_users: 20,
                    allocation: scenario.allocation(),
                    ..Default::default()
                },
            );
            let mut cfg = FlConfig {
                method: Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
                sigma: 1.0,
                clip_bound: 1.0,
                local_lr: 0.2,
                local_epochs: 2,
                global_lr: 2.0,
                ..Default::default()
            };
            cfg.fault_plan = scenario.plan;
            let weights = WeightMatrix::from_histogram(
                WeightingStrategy::RecordProportional,
                &dataset.histogram(),
            );
            let rt = Runtime::new(threads);
            let mut cfg2 = cfg.clone();
            cfg2.shards = shards;
            cfg2.chunk_size = chunk;
            let mut model: Box<dyn Model> =
                Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
            uldp_avg::run_round(&rt, &mut model, &dataset, &cfg2, &weights, Some(mask), 0.15, 3);
            model.parameters().iter().map(|p| p.to_bits()).collect::<Vec<u64>>()
        };
        let reference = run(1, 1, usize::MAX, &mask);
        assert_eq!(
            reference,
            run(1, 1, usize::MAX, &dense),
            "scenario {}: dense mask diverged sequentially",
            scenario.name
        );
        for &(threads, shards, chunk) in &[(2usize, 2usize, 3usize), (4, 3, usize::MAX)] {
            assert_eq!(
                reference,
                run(threads, shards, chunk, &mask),
                "scenario {}: sparse mask diverged at threads={threads}",
                scenario.name
            );
            assert_eq!(
                reference,
                run(threads, shards, chunk, &dense),
                "scenario {}: dense mask diverged at threads={threads}",
                scenario.name
            );
        }
    }
}

#[test]
fn faulted_rounds_differ_from_clean_rounds() {
    // The oracle would be vacuous if the fault injection were a no-op: dropout and
    // byzantine scenarios must actually change the trajectory relative to baseline.
    let scenarios = Scenario::catalogue();
    let baseline = history_bits(&train_scenario(&scenarios[0], 1, 1, usize::MAX));
    for name in ["dropout_heavy", "byz_sign_flip", "mixed_worst_case"] {
        let scenario = scenarios.iter().find(|s| s.name == name).unwrap();
        let run = history_bits(&train_scenario(scenario, 1, 1, usize::MAX));
        assert_ne!(run, baseline, "scenario {name} did not perturb training");
    }
}

#[test]
fn dropout_round_equals_reweighted_round_over_survivors() {
    // Degradation semantics, asserted exactly: dropping silos under the plan is the
    // same as zeroing their weights in a plan-less round and compensating the global
    // learning rate by |S| / |S_surviving|. Zero noise isolates the deterministic part.
    let mut rng = StdRng::seed_from_u64(11);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig { train_records: 240, test_records: 40, ..Default::default() },
    );
    let n = dataset.num_silos;
    let plan = FaultPlan { dropout_fraction: 0.4, seed: 33, ..FaultPlan::none() };
    let round_seed = 5u64;
    let dropped = plan.dropped_silos(round_seed, n);
    let surviving = dropped.iter().filter(|&&d| !d).count();
    assert!(surviving < n, "plan must actually drop a silo for this test to bite");

    let base_cfg = FlConfig {
        method: Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        sigma: 0.0,
        clip_bound: 1.0,
        local_lr: 0.1,
        local_epochs: 2,
        global_lr: 2.0,
        ..Default::default()
    };
    let weights = WeightMatrix::uniform(n, dataset.num_users);
    let rt = Runtime::new(2);

    let mut faulted_cfg = base_cfg.clone();
    faulted_cfg.fault_plan = plan;
    let mut faulted: Box<dyn Model> = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    uldp_avg::run_round(&rt, &mut faulted, &dataset, &faulted_cfg, &weights, None, 1.0, round_seed);

    let mut reference_cfg = base_cfg;
    reference_cfg.global_lr *= n as f64 / surviving as f64;
    let mut zeroed = WeightMatrix::uniform(n, dataset.num_users);
    for (silo, &d) in dropped.iter().enumerate() {
        if d {
            for user in 0..dataset.num_users {
                zeroed.set(silo, user, 0.0);
            }
        }
    }
    let mut reference: Box<dyn Model> = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    uldp_avg::run_round(
        &rt,
        &mut reference,
        &dataset,
        &reference_cfg,
        &zeroed,
        None,
        1.0,
        round_seed,
    );

    for (a, b) in faulted.parameters().iter().zip(reference.parameters().iter()) {
        assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0),
            "faulted {a} vs reweighted reference {b}"
        );
    }
    // And the round actually moved the model (the equivalence is not vacuous).
    assert!(faulted.parameters().iter().any(|p| *p != 0.0));
}

#[test]
fn byzantine_influence_is_bounded_by_the_clipping_norm() {
    // Even a 1e6-scaled gradient attack moves the model by at most
    // global_lr · scale · 2·C·Σ_{corrupted tasks} w — the per-user clipping defense.
    let mut rng = StdRng::seed_from_u64(13);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig { train_records: 200, test_records: 40, ..Default::default() },
    );
    let n = dataset.num_silos;
    let clip = 0.5;
    let base_cfg = FlConfig {
        method: Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        sigma: 0.0,
        clip_bound: clip,
        local_lr: 0.2,
        local_epochs: 2,
        global_lr: 1.5,
        ..Default::default()
    };
    let weights = WeightMatrix::uniform(n, dataset.num_users);
    let rt = Runtime::new(2);
    let round_seed = 9u64;

    let run = |plan: FaultPlan| {
        let mut cfg = base_cfg.clone();
        cfg.fault_plan = plan;
        let mut model: Box<dyn Model> = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
        uldp_avg::run_round(&rt, &mut model, &dataset, &cfg, &weights, None, 1.0, round_seed);
        model.parameters().to_vec()
    };
    let honest = run(FaultPlan::none());
    for strategy in [
        ByzantineStrategy::SignFlip,
        ByzantineStrategy::ScaledGradient { factor: 1e6 },
        ByzantineStrategy::RandomNoise { std: 100.0 },
    ] {
        let plan = FaultPlan {
            byzantine_fraction: 0.5,
            byzantine: strategy,
            seed: 21,
            ..FaultPlan::none()
        };
        let byz = plan.byzantine_silos(round_seed, n);
        assert!(byz.iter().any(|&b| b), "plan must corrupt at least one silo");
        let attacked = run(plan);

        // Corrupted weight mass: every (byzantine silo, user-present-in-silo) task.
        let corrupted_weight: f64 = (0..n)
            .filter(|&s| byz[s])
            .flat_map(|s| dataset.users_in_silo(s).into_iter().map(move |u| (s, u)))
            .map(|(s, u)| weights.get(s, u))
            .sum();
        let scale = 1.0 / (dataset.num_users as f64 * n as f64);
        let bound = base_cfg.global_lr * scale * 2.0 * clip * corrupted_weight;
        let moved: f64 =
            attacked.iter().zip(honest.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(
            moved <= bound + 1e-9,
            "{}: influence {moved} exceeds clipping bound {bound}",
            plan.byzantine.label()
        );
        assert!(moved > 0.0, "{}: corruption was a no-op", plan.byzantine.label());
    }
}

// Property test: random (scenario, threads, shards, chunk) grid points must reproduce
// the scenario's sequential reference bit for bit — the fuzz oracle on random samples
// beyond the fixed sweep above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_scenario_grid_points_reproduce_training_bitwise(
        scenario_pick in 0usize..9,
        threads in 1usize..5,
        shards in 1usize..4,
        chunk_pick in 0usize..4,
    ) {
        let scenarios = Scenario::catalogue();
        let scenario = &scenarios[scenario_pick % scenarios.len()];
        let chunk = [1usize, 7, 16, usize::MAX][chunk_pick];
        let reference = history_bits(&train_scenario(scenario, 1, 1, usize::MAX));
        let run = history_bits(&train_scenario(scenario, threads, shards, chunk));
        prop_assert_eq!(run, reference);
    }
}
