//! Integration tests for the extension features built on top of the paper's core system:
//! the user-level membership-inference harness, the binary metrics for the imbalanced
//! fraud task, and the momentum optimiser ablation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::core::attack::{member_user_records, user_level_membership_inference};
use uldp_fl::core::{FlConfig, Method, Trainer, WeightingStrategy};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::ml::binary_metrics::{confusion_counts, roc_auc};
use uldp_fl::ml::{LinearClassifier, Model, MomentumSgd, Sample};

fn hard_creditcard(seed: u64) -> uldp_fl::datasets::FederatedDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: 400,
            test_records: 200,
            num_users: 30,
            class_separation: 0.6,
            ..Default::default()
        },
    )
}

#[test]
fn trained_model_has_meaningful_binary_metrics() {
    let mut rng = StdRng::seed_from_u64(1);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig { train_records: 1200, test_records: 400, ..Default::default() },
    );
    let mut config = FlConfig::recommended(Method::Default, dataset.num_silos);
    config.rounds = 6;
    config.local_lr = 0.3;
    config.eval_every = 6;
    let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    let mut trainer = Trainer::new(config, dataset.clone(), model);
    trainer.run();
    let auc = roc_auc(trainer.model(), &dataset.test);
    assert!(auc > 0.85, "trained fraud detector should rank well (AUC {auc})");
    let counts = confusion_counts(trainer.model(), &dataset.test);
    assert!(counts.f1() > 0.5, "F1 {}", counts.f1());
    assert!(counts.recall() > 0.4 && counts.precision() > 0.4);
}

#[test]
fn membership_inference_advantage_is_larger_without_dp() {
    // The memorisation signal on low-separation data should be stronger for the
    // non-private model than for the heavily-noised ULDP-AVG model.
    let dataset = hard_creditcard(2);
    let shadow = hard_creditcard(3);
    let members = member_user_records(&dataset);
    let non_members = member_user_records(&shadow);

    let run = |method: Method, sigma: f64| {
        let mut config = FlConfig::recommended(method, dataset.num_silos);
        config.rounds = 10;
        config.local_epochs = 4;
        config.local_lr = 0.5;
        config.sigma = sigma;
        config.eval_every = 10;
        if matches!(method, Method::UldpAvg { .. }) {
            config.global_lr = dataset.num_silos as f64 * 10.0;
        }
        let model: Box<dyn Model> = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
        let mut trainer = Trainer::new(config, dataset.clone(), model);
        trainer.run();
        user_level_membership_inference(trainer.model(), &members, &non_members)
    };

    let non_private = run(Method::Default, 0.0);
    let private = run(Method::UldpAvg { weighting: WeightingStrategy::Uniform }, 5.0);
    // Both advantages are valid probabilistic quantities.
    assert!((0.0..=1.0).contains(&non_private.auc));
    assert!((0.0..=1.0).contains(&private.auc));
    // The DP model must not leak more than the non-private model (allow a small slack for
    // the randomness of the tiny quick-scale setup).
    assert!(
        private.advantage <= non_private.advantage + 0.15,
        "DP advantage {} vs non-private {}",
        private.advantage,
        non_private.advantage
    );
}

#[test]
fn momentum_sgd_trains_a_classifier() {
    // The momentum optimiser is an ablation utility; verify it interoperates with the
    // model trait and actually learns.
    let data = [
        Sample::classification(vec![2.0, 1.0], 1),
        Sample::classification(vec![1.5, 2.0], 1),
        Sample::classification(vec![-2.0, -1.0], 0),
        Sample::classification(vec![-1.5, -2.0], 0),
    ];
    let refs: Vec<&Sample> = data.iter().collect();
    let mut model = LinearClassifier::new(2, 2);
    let mut opt = MomentumSgd::new(0.2, 0.9, model.num_parameters());
    let initial_loss = model.loss(&refs);
    for _ in 0..100 {
        let (_, grad) = model.loss_and_gradient(&refs);
        opt.step(model.parameters_mut(), &grad);
    }
    assert!(model.loss(&refs) < initial_loss * 0.2);
}
