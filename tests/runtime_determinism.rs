//! Determinism guarantees of the pooled runtime, end to end: training through
//! [`Trainer::run`] and a full Protocol 1 weighting round must produce **bitwise
//! identical** results at 1, 2 and N worker threads — and, since the streaming sharded
//! round engine, across every `(shards, chunk_size)` setting as well.
//!
//! These are the acceptance tests of the `uldp-runtime` refactors: any scheduling
//! dependence — a shared RNG handed across tasks, a reduction whose shape follows the
//! thread count, a racy accumulation order, a float sum whose bracketing follows the
//! shard or chunk grid — shows up here as a bit difference.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uldp_fl::core::{
    FlConfig, Method, PrivateWeightingProtocol, ProtocolConfig, SampleMask, Trainer,
    TrainingHistory, WeightingStrategy,
};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::ml::LinearClassifier;
use uldp_fl::runtime::Runtime;

/// Collapses a history into a bit-exact fingerprint (parameters and metrics as raw bits).
fn history_bits(h: &TrainingHistory) -> Vec<u64> {
    let mut bits: Vec<u64> = h.final_parameters.iter().map(|p| p.to_bits()).collect();
    for r in &h.rounds {
        bits.push(r.round);
        bits.push(r.epsilon.to_bits());
        bits.push(r.test_accuracy.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        bits.push(r.test_loss.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        bits.push(r.c_index.map(|v| v.to_bits()).unwrap_or(u64::MAX));
    }
    bits
}

fn train_with_structure(
    method: Method,
    threads: usize,
    shards: usize,
    chunk_size: usize,
    seed: u64,
    rounds: u64,
) -> TrainingHistory {
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig { train_records: 300, test_records: 60, ..Default::default() },
    );
    let mut config = FlConfig::recommended(method, dataset.num_silos);
    config.rounds = rounds;
    config.local_epochs = 2;
    config.sigma = if method.is_private() { 1.0 } else { 0.0 };
    config.user_sampling = if matches!(method, Method::UldpAvg { .. }) { 0.7 } else { 1.0 };
    config.threads = threads;
    config.shards = shards;
    config.chunk_size = chunk_size;
    let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    Trainer::new(config, dataset, model).run()
}

fn train_with_threads(method: Method, threads: usize) -> TrainingHistory {
    train_with_structure(method, threads, 0, 0, 7, 3)
}

#[test]
fn training_history_is_bitwise_identical_at_any_thread_count() {
    for method in [
        Method::Default,
        Method::UldpNaive,
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
        Method::UldpSgd { weighting: WeightingStrategy::Uniform },
    ] {
        let sequential = history_bits(&train_with_threads(method, 1));
        assert_eq!(
            sequential,
            history_bits(&train_with_threads(method, 2)),
            "{}: 2 threads diverged from sequential",
            method.label()
        );
        assert_eq!(
            sequential,
            history_bits(&train_with_threads(method, 5)),
            "{}: 5 threads diverged from sequential",
            method.label()
        );
    }
}

#[test]
fn group_training_is_bitwise_identical_at_any_thread_count() {
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(8);
        let dataset = creditcard::generate(
            &mut rng,
            &CreditcardConfig { train_records: 200, test_records: 40, ..Default::default() },
        );
        let method = Method::UldpGroup {
            group_size: uldp_fl::core::GroupSize::Fixed(4),
            sampling_rate: 0.5,
        };
        let mut config = FlConfig::recommended(method, dataset.num_silos);
        config.rounds = 2;
        config.sigma = 1.0;
        config.threads = threads;
        let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
        history_bits(&Trainer::new(config, dataset, model).run())
    };
    let sequential = run(1);
    assert_eq!(sequential, run(2));
    assert_eq!(sequential, run(4));
}

#[test]
fn training_history_is_bitwise_identical_across_the_structure_grid() {
    // The streaming sharded round engine's acceptance grid: every combination of
    // (threads, shards, chunk_size) must reproduce the (1 thread, 1 shard, one-chunk)
    // reference bit for bit. The exact fixed-point accumulation makes the per-silo sums
    // independent of the span grid; the per-task RNG streams are already independent of
    // it. chunk_size = usize::MAX means "whole shard in one chunk".
    let method = Method::UldpAvg { weighting: WeightingStrategy::RecordProportional };
    let reference = history_bits(&train_with_structure(method, 1, 1, usize::MAX, 7, 2));
    for threads in [1usize, 2, 4] {
        for shards in [1usize, 2, 3] {
            for chunk in [1usize, 7, usize::MAX] {
                let run = history_bits(&train_with_structure(method, threads, shards, chunk, 7, 2));
                assert_eq!(
                    run, reference,
                    "threads={threads} shards={shards} chunk={chunk} diverged"
                );
            }
        }
    }
    // ULDP-SGD rides the same engine: spot-check the grid corners.
    let method = Method::UldpSgd { weighting: WeightingStrategy::Uniform };
    let reference = history_bits(&train_with_structure(method, 1, 1, usize::MAX, 8, 2));
    for (threads, shards, chunk) in [(2, 3, 1), (4, 2, 7)] {
        let run = history_bits(&train_with_structure(method, threads, shards, chunk, 8, 2));
        assert_eq!(run, reference, "threads={threads} shards={shards} chunk={chunk} diverged");
    }
}

#[test]
fn protocol_round_is_bitwise_identical_across_threads_and_chunks() {
    let histogram = vec![vec![3usize, 1, 0, 5, 2], vec![1, 0, 2, 5, 1], vec![0, 4, 2, 0, 3]];
    let run = |threads: usize, chunk_size: usize| {
        let mut rng = StdRng::seed_from_u64(91);
        let config = ProtocolConfig {
            paillier_bits: 256,
            dh_bits: 128,
            n_max: 16,
            threads,
            chunk_size,
            ..Default::default()
        };
        let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
        let dim = 6;
        let deltas: Vec<Vec<Vec<f64>>> = histogram
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&c| {
                        if c == 0 {
                            Vec::new()
                        } else {
                            (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
                        }
                    })
                    .collect()
            })
            .collect();
        let noises: Vec<Vec<f64>> = histogram
            .iter()
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
            .collect();
        let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
        out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
    };
    // Ciphertext accumulation is exact modular arithmetic, so the streamed cell fold
    // must reproduce the (1 thread, one-chunk) reference at every grid point.
    let sequential = run(1, usize::MAX);
    for threads in [1usize, 2, 6] {
        for chunk in [1usize, 7, usize::MAX] {
            assert_eq!(sequential, run(threads, chunk), "threads={threads} chunk={chunk}");
        }
    }
}

#[test]
fn sparse_and_dense_masks_agree_bitwise_across_threads_and_chunks() {
    // The dense-vs-sparse determinism oracle on the structure grid: 3 of 13 users
    // sampled keeps the mask below the ¼ density threshold (sparse index-list
    // layout), and `densified()` forces the dense flag layout of the same selection.
    // Every (threads, chunk) grid point must produce ONE bit pattern for both
    // representations, across two rounds so the cross-round cache (fresh round 1,
    // re-randomised round 2, lazily materialised under the sparse mask) is on the
    // grid too.
    let histogram: Vec<Vec<usize>> = vec![
        vec![1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1],
        vec![2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 0, 1],
    ];
    let mask = SampleMask::from_sorted_indices(13, vec![2, 7, 11]);
    let run = |threads: usize, chunk_size: usize, mask: &SampleMask| {
        let mut rng = StdRng::seed_from_u64(93);
        let config = ProtocolConfig {
            paillier_bits: 256,
            dh_bits: 128,
            n_max: 16,
            threads,
            chunk_size,
            ..Default::default()
        };
        let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
        let dim = 4;
        let mut out = Vec::new();
        for _ in 0..2 {
            let deltas: Vec<Vec<Vec<f64>>> = histogram
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&c| {
                            if c == 0 {
                                Vec::new()
                            } else {
                                (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
                            }
                        })
                        .collect()
                })
                .collect();
            let noises: Vec<Vec<f64>> = histogram
                .iter()
                .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
                .collect();
            let (agg, _) = protocol.weighting_round(&deltas, &noises, Some(mask), &mut rng);
            out.extend(agg.iter().map(|v| v.to_bits()));
        }
        out
    };
    let reference = run(1, usize::MAX, &mask);
    for threads in [1usize, 2, 4] {
        for chunk in [1usize, 3, usize::MAX] {
            assert_eq!(
                run(threads, chunk, &mask),
                reference,
                "sparse mask diverged at threads={threads} chunk={chunk}"
            );
            assert_eq!(
                run(threads, chunk, &mask.densified()),
                reference,
                "dense mask diverged at threads={threads} chunk={chunk}"
            );
        }
    }
}

#[test]
fn swapping_the_runtime_after_setup_preserves_bits() {
    // The same protocol instance must produce identical rounds before and after a
    // with_runtime swap (what the figure binaries rely on for their speedup measurement).
    let histogram = vec![vec![2usize, 1, 3], vec![1, 2, 0]];
    let mut rng = StdRng::seed_from_u64(17);
    let config =
        ProtocolConfig { paillier_bits: 256, dh_bits: 128, n_max: 8, ..Default::default() };
    let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
    let deltas: Vec<Vec<Vec<f64>>> =
        histogram.iter().map(|row| row.iter().map(|_| vec![0.25, -0.5, 0.125]).collect()).collect();
    let noises = vec![vec![0.001, -0.002, 0.0005]; 2];
    let round_rng = rng.clone();
    let (a, _) = protocol.weighting_round(&deltas, &noises, None, &mut round_rng.clone());
    let protocol = protocol.with_runtime(Runtime::handle(3));
    let (b, _) = protocol.weighting_round(&deltas, &noises, None, &mut round_rng.clone());
    assert_eq!(
        a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

// Property test: random (threads, shards, chunk) grid points must reproduce the
// sequential single-shard single-chunk training reference bit for bit.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_structure_grid_points_reproduce_training_bitwise(
        seed in any::<u64>(),
        threads in 1usize..5,
        shards in 1usize..4,
        chunk_pick in 0usize..3,
    ) {
        let chunk = [1usize, 7, usize::MAX][chunk_pick];
        let method = Method::UldpAvg { weighting: WeightingStrategy::RecordProportional };
        let reference = history_bits(&train_with_structure(method, 1, 1, usize::MAX, seed, 2));
        let run = history_bits(&train_with_structure(method, threads, shards, chunk, seed, 2));
        prop_assert_eq!(run, reference);
    }
}

// Property test: the inversion-based Poisson sampler is a pure function of its seeded
// RNG stream — same seed, same mask — and consumes exactly `sampled_count() + 1`
// uniform draws for 0 < q < 1, so everything drawn after the mask is independent of
// how many users exist (the property the O(q·|U|) round path relies on to keep sparse
// and dense runs on one RNG stream).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn poisson_sampler_stream_is_deterministic_and_exactly_counted(
        seed in any::<u64>(),
        num_users in 1usize..5000,
        q_mil in 1u32..1000,
    ) {
        let q = q_mil as f64 / 1000.0;
        let mask_a = SampleMask::poisson(&mut StdRng::seed_from_u64(seed), num_users, q);
        let mask_b = SampleMask::poisson(&mut StdRng::seed_from_u64(seed), num_users, q);
        prop_assert_eq!(&mask_a, &mask_b);

        let mut rng = StdRng::seed_from_u64(seed);
        let mask = SampleMask::poisson(&mut rng, num_users, q);
        let after_sampling = rng.gen::<u64>();
        let mut reference = StdRng::seed_from_u64(seed);
        for _ in 0..mask.sampled_count() + 1 {
            let _: f64 = reference.gen();
        }
        prop_assert_eq!(after_sampling, reference.gen::<u64>());

        // The selection itself is strictly sorted and in range.
        let indices: Vec<usize> = mask.iter().collect();
        prop_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(indices.iter().all(|&u| u < num_users));
    }
}

// Property test: random histograms and deltas, sequential vs pooled protocol rounds.
// Key generation dominates, so the key size is small and the case count modest.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_protocol_rounds_match_bitwise_across_thread_counts(
        seed in any::<u64>(),
        histogram in prop::collection::vec(prop::collection::vec(0usize..5, 4), 2..4),
        dim in 1usize..4,
        chunk in 1usize..9,
    ) {
        // Guard: the protocol requires at least one record overall to be interesting;
        // all-zero histograms are still valid (every inverse is None) and must agree too.
        let run = |threads: usize, chunk_size: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = ProtocolConfig {
                paillier_bits: 128,
                dh_bits: 64,
                n_max: 32,
                threads,
                chunk_size,
                ..Default::default()
            };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
            let deltas: Vec<Vec<Vec<f64>>> = histogram
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&c| {
                            if c == 0 {
                                Vec::new()
                            } else {
                                (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
                            }
                        })
                        .collect()
                })
                .collect();
            let noises: Vec<Vec<f64>> = histogram
                .iter()
                .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
                .collect();
            let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
            out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        };
        prop_assert_eq!(run(1, usize::MAX), run(3, chunk));
    }
}
