//! Determinism guarantees of the pooled runtime, end to end: training through
//! [`Trainer::run`] and a full Protocol 1 weighting round must produce **bitwise
//! identical** results at 1, 2 and N worker threads.
//!
//! These are the acceptance tests of the `uldp-runtime` refactor: any scheduling
//! dependence — a shared RNG handed across tasks, a reduction whose shape follows the
//! thread count, a racy accumulation order — shows up here as a bit difference.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uldp_fl::core::{
    FlConfig, Method, PrivateWeightingProtocol, ProtocolConfig, Trainer, TrainingHistory,
    WeightingStrategy,
};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::ml::LinearClassifier;
use uldp_fl::runtime::Runtime;

/// Collapses a history into a bit-exact fingerprint (parameters and metrics as raw bits).
fn history_bits(h: &TrainingHistory) -> Vec<u64> {
    let mut bits: Vec<u64> = h.final_parameters.iter().map(|p| p.to_bits()).collect();
    for r in &h.rounds {
        bits.push(r.round);
        bits.push(r.epsilon.to_bits());
        bits.push(r.test_accuracy.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        bits.push(r.test_loss.map(|v| v.to_bits()).unwrap_or(u64::MAX));
        bits.push(r.c_index.map(|v| v.to_bits()).unwrap_or(u64::MAX));
    }
    bits
}

fn train_with_threads(method: Method, threads: usize) -> TrainingHistory {
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig { train_records: 300, test_records: 60, ..Default::default() },
    );
    let mut config = FlConfig::recommended(method, dataset.num_silos);
    config.rounds = 3;
    config.local_epochs = 2;
    config.sigma = if method.is_private() { 1.0 } else { 0.0 };
    config.user_sampling = if matches!(method, Method::UldpAvg { .. }) { 0.7 } else { 1.0 };
    config.threads = threads;
    let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    Trainer::new(config, dataset, model).run()
}

#[test]
fn training_history_is_bitwise_identical_at_any_thread_count() {
    for method in [
        Method::Default,
        Method::UldpNaive,
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
        Method::UldpSgd { weighting: WeightingStrategy::Uniform },
    ] {
        let sequential = history_bits(&train_with_threads(method, 1));
        assert_eq!(
            sequential,
            history_bits(&train_with_threads(method, 2)),
            "{}: 2 threads diverged from sequential",
            method.label()
        );
        assert_eq!(
            sequential,
            history_bits(&train_with_threads(method, 5)),
            "{}: 5 threads diverged from sequential",
            method.label()
        );
    }
}

#[test]
fn group_training_is_bitwise_identical_at_any_thread_count() {
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(8);
        let dataset = creditcard::generate(
            &mut rng,
            &CreditcardConfig { train_records: 200, test_records: 40, ..Default::default() },
        );
        let method = Method::UldpGroup {
            group_size: uldp_fl::core::GroupSize::Fixed(4),
            sampling_rate: 0.5,
        };
        let mut config = FlConfig::recommended(method, dataset.num_silos);
        config.rounds = 2;
        config.sigma = 1.0;
        config.threads = threads;
        let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
        history_bits(&Trainer::new(config, dataset, model).run())
    };
    let sequential = run(1);
    assert_eq!(sequential, run(2));
    assert_eq!(sequential, run(4));
}

#[test]
fn protocol_round_is_bitwise_identical_at_any_thread_count() {
    let histogram = vec![vec![3usize, 1, 0, 5, 2], vec![1, 0, 2, 5, 1], vec![0, 4, 2, 0, 3]];
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(91);
        let config = ProtocolConfig {
            paillier_bits: 256,
            dh_bits: 128,
            n_max: 16,
            threads,
            ..Default::default()
        };
        let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
        let dim = 6;
        let deltas: Vec<Vec<Vec<f64>>> = histogram
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&c| {
                        if c == 0 {
                            Vec::new()
                        } else {
                            (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
                        }
                    })
                    .collect()
            })
            .collect();
        let noises: Vec<Vec<f64>> = histogram
            .iter()
            .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
            .collect();
        let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
        out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
    };
    let sequential = run(1);
    assert_eq!(sequential, run(2));
    assert_eq!(sequential, run(6));
}

#[test]
fn swapping_the_runtime_after_setup_preserves_bits() {
    // The same protocol instance must produce identical rounds before and after a
    // with_runtime swap (what the figure binaries rely on for their speedup measurement).
    let histogram = vec![vec![2usize, 1, 3], vec![1, 2, 0]];
    let mut rng = StdRng::seed_from_u64(17);
    let config =
        ProtocolConfig { paillier_bits: 256, dh_bits: 128, n_max: 8, ..Default::default() };
    let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
    let deltas: Vec<Vec<Vec<f64>>> =
        histogram.iter().map(|row| row.iter().map(|_| vec![0.25, -0.5, 0.125]).collect()).collect();
    let noises = vec![vec![0.001, -0.002, 0.0005]; 2];
    let round_rng = rng.clone();
    let (a, _) = protocol.weighting_round(&deltas, &noises, None, &mut round_rng.clone());
    let protocol = protocol.with_runtime(Runtime::handle(3));
    let (b, _) = protocol.weighting_round(&deltas, &noises, None, &mut round_rng.clone());
    assert_eq!(
        a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

// Property test: random histograms and deltas, sequential vs pooled protocol rounds.
// Key generation dominates, so the key size is small and the case count modest.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_protocol_rounds_match_bitwise_across_thread_counts(
        seed in any::<u64>(),
        histogram in prop::collection::vec(prop::collection::vec(0usize..5, 4), 2..4),
        dim in 1usize..4,
    ) {
        // Guard: the protocol requires at least one record overall to be interesting;
        // all-zero histograms are still valid (every inverse is None) and must agree too.
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = ProtocolConfig {
                paillier_bits: 128,
                dh_bits: 64,
                n_max: 32,
                threads,
                ..Default::default()
            };
            let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
            let deltas: Vec<Vec<Vec<f64>>> = histogram
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&c| {
                            if c == 0 {
                                Vec::new()
                            } else {
                                (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
                            }
                        })
                        .collect()
                })
                .collect();
            let noises: Vec<Vec<f64>> = histogram
                .iter()
                .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
                .collect();
            let (out, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
            out.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        };
        prop_assert_eq!(run(1), run(3));
    }
}
