//! Integration tests of the private weighting protocol against the rest of the framework:
//! Protocol 1 must compute exactly the aggregate that the plaintext ULDP-AVG-w path
//! computes, for realistic histograms produced by the dataset generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uldp_fl::core::WeightMatrix;
use uldp_fl::core::{PrivateWeightingProtocol, ProtocolConfig, SampleMask, WeightingStrategy};
use uldp_fl::datasets::heart_disease::{self, HeartDiseaseConfig};
use uldp_fl::datasets::Allocation;

fn protocol_config() -> ProtocolConfig {
    ProtocolConfig { paillier_bits: 384, dh_bits: 128, n_max: 128, ..Default::default() }
}

fn random_deltas(
    histogram: &[Vec<usize>],
    dim: usize,
    rng: &mut StdRng,
) -> (Vec<Vec<Vec<f64>>>, Vec<Vec<f64>>) {
    let deltas = histogram
        .iter()
        .map(|row| {
            row.iter()
                .map(|&c| {
                    if c == 0 {
                        Vec::new()
                    } else {
                        (0..dim).map(|_| rng.gen_range(-0.5..0.5)).collect()
                    }
                })
                .collect()
        })
        .collect();
    let noises =
        histogram.iter().map(|_| (0..dim).map(|_| rng.gen_range(-0.05..0.05)).collect()).collect();
    (deltas, noises)
}

#[test]
fn protocol_agrees_with_plaintext_on_a_real_histogram() {
    // Use the HeartDisease generator's histogram (zipf allocation) so the protocol is
    // exercised with a realistic skewed user distribution.
    let mut rng = StdRng::seed_from_u64(21);
    let dataset = heart_disease::generate(
        &mut rng,
        &HeartDiseaseConfig {
            num_users: 12,
            silo_sizes: vec![40, 35, 10, 20],
            allocation: Allocation::zipf_default(),
            ..Default::default()
        },
    );
    let histogram = dataset.histogram();
    let protocol = PrivateWeightingProtocol::setup(&histogram, &protocol_config(), &mut rng);
    let (deltas, noises) = random_deltas(&histogram, 6, &mut rng);
    let (secure, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
    let plaintext = protocol.plaintext_reference(&deltas, &noises, None);
    for (a, b) in secure.iter().zip(plaintext.iter()) {
        assert!((a - b).abs() < 1e-6, "secure {a} vs plaintext {b}");
    }
}

#[test]
fn protocol_weights_match_record_proportional_weight_matrix() {
    let mut rng = StdRng::seed_from_u64(22);
    let histogram = vec![vec![3usize, 1, 0, 5], vec![1, 0, 2, 5], vec![0, 4, 2, 0]];
    let protocol = PrivateWeightingProtocol::setup(&histogram, &protocol_config(), &mut rng);
    let expected = WeightMatrix::from_histogram(WeightingStrategy::RecordProportional, &histogram);
    let actual = protocol.reference_weights();
    for s in 0..histogram.len() {
        for u in 0..histogram[0].len() {
            assert!((expected.get(s, u) - actual.get(s, u)).abs() < 1e-12);
        }
    }
}

#[test]
fn protocol_rounds_are_repeatable_across_rounds() {
    // The same setup must serve multiple rounds and still agree with the plaintext
    // reference each time — round 1 from fresh encryptions, later rounds from the
    // cross-round cache's re-randomised ciphertexts.
    let mut rng = StdRng::seed_from_u64(23);
    let histogram = vec![vec![2usize, 3, 1], vec![1, 0, 4]];
    let protocol = PrivateWeightingProtocol::setup(&histogram, &protocol_config(), &mut rng);
    for round in 0..3 {
        let (deltas, noises) = random_deltas(&histogram, 4, &mut rng);
        let (secure, timings) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
        let plaintext = protocol.plaintext_reference(&deltas, &noises, None);
        for (a, b) in secure.iter().zip(plaintext.iter()) {
            assert!((a - b).abs() < 1e-6, "round {round}: {a} vs {b}");
        }
        assert!(timings.silo_weighting >= std::time::Duration::ZERO);
    }
}

#[test]
fn protocol_handles_users_with_no_records() {
    // A user with zero records everywhere has no blinded inverse; their slot must simply
    // contribute nothing rather than corrupting the aggregate.
    let mut rng = StdRng::seed_from_u64(24);
    let histogram = vec![vec![2usize, 0, 3], vec![1, 0, 1]];
    let protocol = PrivateWeightingProtocol::setup(&histogram, &protocol_config(), &mut rng);
    let (deltas, noises) = random_deltas(&histogram, 3, &mut rng);
    let (secure, _) = protocol.weighting_round(&deltas, &noises, None, &mut rng);
    let plaintext = protocol.plaintext_reference(&deltas, &noises, None);
    for (a, b) in secure.iter().zip(plaintext.iter()) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn subsampled_protocol_round_matches_masked_plaintext() {
    let mut rng = StdRng::seed_from_u64(25);
    let histogram = vec![vec![2usize, 3, 1, 2], vec![1, 2, 4, 0]];
    let protocol = PrivateWeightingProtocol::setup(&histogram, &protocol_config(), &mut rng);
    let (deltas, noises) = random_deltas(&histogram, 5, &mut rng);
    let sampled = SampleMask::from_dense(vec![true, false, false, true]);
    let (secure, _) = protocol.weighting_round(&deltas, &noises, Some(&sampled), &mut rng);
    let plaintext = protocol.plaintext_reference(&deltas, &noises, Some(&sampled));
    for (a, b) in secure.iter().zip(plaintext.iter()) {
        assert!((a - b).abs() < 1e-6);
    }
}
