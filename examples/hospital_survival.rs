//! Federated survival analysis across six hospitals (the TcgaBrca scenario): a patient may
//! be treated in several hospitals, so their records span silos. Trains a Cox
//! proportional-hazards model with ULDP-AVG and the enhanced weighting strategy, and
//! reports the concordance index versus the accumulated user-level ε.
//!
//! ```bash
//! cargo run --release --example hospital_survival
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::core::{FlConfig, Method, Trainer, WeightingStrategy};
use uldp_fl::datasets::tcga_brca::{self, TcgaBrcaConfig};
use uldp_fl::datasets::Allocation;
use uldp_fl::ml::CoxRegression;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let dataset = tcga_brca::generate(
        &mut rng,
        &TcgaBrcaConfig {
            num_users: 50,
            allocation: Allocation::zipf_default(),
            ..Default::default()
        },
    );
    println!(
        "TcgaBrca federation: {} patients' records over {} hospitals, {} users (zipf)\n",
        dataset.num_records(),
        dataset.num_silos,
        dataset.num_users
    );

    for weighting in [WeightingStrategy::Uniform, WeightingStrategy::RecordProportional] {
        let method = Method::UldpAvg { weighting };
        let mut config = FlConfig::recommended(method, dataset.num_silos);
        config.rounds = 20;
        config.local_epochs = 3;
        config.local_lr = 0.2;
        config.global_lr = dataset.num_silos as f64 * 10.0;
        config.clip_bound = 0.5;
        config.sigma = 5.0;
        config.eval_every = 5;

        let model = Box::new(CoxRegression::new(dataset.feature_dim()));
        let history = Trainer::new(config, dataset.clone(), model).run();

        println!("method = {}", history.method);
        println!("round  C-index  epsilon");
        for r in &history.rounds {
            println!("{:>5}  {:>7.4}  {:>7.3}", r.round, r.c_index.unwrap_or(f64::NAN), r.epsilon);
        }
        println!();
    }
    println!(
        "The record-proportional weights (ULDP-AVG-w) should reach a higher C-index sooner\n\
         under the skewed (zipf) allocation, mirroring Figures 7 and 8 of the paper."
    );
}
