//! Quickstart: train one model with user-level DP across silos and print the
//! privacy/utility trajectory.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::core::{FlConfig, Method, Trainer, WeightingStrategy};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::ml::LinearClassifier;

fn main() {
    // 1. Build a cross-silo federation: 5 silos, 100 users, records allocated uniformly.
    let mut rng = StdRng::seed_from_u64(0);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig { train_records: 3000, test_records: 600, ..Default::default() },
    );
    println!(
        "dataset: {} ({} records, {} silos, {} users, ~{:.1} records/user)",
        dataset.name,
        dataset.num_records(),
        dataset.num_silos,
        dataset.num_users,
        dataset.avg_records_per_user()
    );

    // 2. Configure ULDP-AVG: per-user weighted clipping, sigma = 5, delta = 1e-5.
    let mut config = FlConfig::recommended(
        Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        dataset.num_silos,
    );
    config.rounds = 15;
    config.local_epochs = 2;
    config.local_lr = 0.5;
    config.global_lr = dataset.num_silos as f64 * 20.0;
    config.clip_bound = 1.0;
    config.sigma = 5.0;

    // 3. Train and watch accuracy vs. accumulated user-level epsilon.
    let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    let mut trainer = Trainer::new(config, dataset, model);
    let history = trainer.run();

    println!("\nround  accuracy  epsilon (ULDP, delta=1e-5)");
    for r in &history.rounds {
        println!(
            "{:>5}  {:>8.4}  {:>8.3}",
            r.round,
            r.test_accuracy.unwrap_or(f64::NAN),
            r.epsilon
        );
    }
    println!(
        "\nfinal accuracy = {:.4}, final epsilon = {:.3}",
        history.final_accuracy().unwrap_or(f64::NAN),
        history.final_epsilon()
    );
}
