//! Credit-card fraud detection across five card companies (the paper's motivating
//! scenario): the same customer holds cards at several companies, so record-level DP per
//! silo does not bound that customer's total influence. This example compares every
//! method's privacy-utility trade-off on the synthetic Creditcard federation.
//!
//! ```bash
//! cargo run --release --example credit_fraud
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use uldp_fl::core::{FlConfig, GroupSize, Method, Trainer, WeightingStrategy};
use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
use uldp_fl::datasets::Allocation;
use uldp_fl::ml::LinearClassifier;

fn run_method(method: Method, dataset: &uldp_fl::datasets::FederatedDataset) -> (String, f64, f64) {
    let mut config = FlConfig::recommended(method, dataset.num_silos);
    config.rounds = 10;
    config.local_epochs = 2;
    config.local_lr = 0.3;
    config.clip_bound = 1.0;
    config.sigma = 5.0;
    if matches!(method, Method::UldpAvg { .. } | Method::UldpSgd { .. }) {
        config.global_lr = dataset.num_silos as f64 * 20.0;
    }
    let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
    let history = Trainer::new(config, dataset.clone(), model).run();
    (history.method.clone(), history.final_accuracy().unwrap_or(f64::NAN), history.final_epsilon())
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = creditcard::generate(
        &mut rng,
        &CreditcardConfig {
            train_records: 2500,
            test_records: 500,
            num_users: 100,
            allocation: Allocation::zipf_default(),
            ..Default::default()
        },
    );
    println!(
        "Creditcard federation: {} records over {} silos, {} users (zipf allocation)\n",
        dataset.num_records(),
        dataset.num_silos,
        dataset.num_users
    );

    let methods = [
        Method::Default,
        Method::UldpNaive,
        Method::UldpGroup { group_size: GroupSize::Max, sampling_rate: 0.1 },
        Method::UldpGroup { group_size: GroupSize::Fixed(8), sampling_rate: 0.1 },
        Method::UldpSgd { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::Uniform },
        Method::UldpAvg { weighting: WeightingStrategy::RecordProportional },
    ];

    println!("{:<20} {:>10} {:>14}", "method", "accuracy", "epsilon(ULDP)");
    for method in methods {
        let (label, acc, eps) = run_method(method, &dataset);
        let eps_str = if eps.is_infinite() { "inf".to_string() } else { format!("{eps:.2}") };
        println!("{label:<20} {acc:>10.4} {eps_str:>14}");
    }
    println!(
        "\nExpected shape (cf. paper Fig. 4): ULDP-AVG(-w) gets accuracy close to DEFAULT at a\n\
         small epsilon; ULDP-GROUP needs a far larger epsilon; ULDP-NAIVE has small epsilon but\n\
         poor accuracy."
    );
}
