//! The private weighting protocol (Protocol 1) end to end: setup (Paillier + DH key
//! exchange, blinded histogram aggregation) followed by one encrypted weighting round,
//! with a correctness check against the plaintext aggregation and a timing breakdown.
//!
//! ```bash
//! cargo run --release --example private_protocol
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uldp_fl::core::{PrivateWeightingProtocol, ProtocolConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // 3 silos, 20 users, a 16-parameter model: the small default scenario of Figure 11.
    let num_silos = 3;
    let num_users = 20;
    let dim = 16;

    // Per-silo user histograms n_{s,u} (each user at most N_max records in total).
    let histogram: Vec<Vec<usize>> = (0..num_silos)
        .map(|_| (0..num_users).map(|_| rng.gen_range(0..8usize)).collect())
        .collect();

    let config =
        ProtocolConfig { paillier_bits: 1024, dh_bits: 512, n_max: 64, ..Default::default() };
    println!(
        "setup: {} silos, {} users, {}-bit Paillier modulus requested",
        num_silos, num_users, config.paillier_bits
    );
    let protocol = PrivateWeightingProtocol::setup(&histogram, &config, &mut rng);
    let setup = protocol.setup_timings();
    println!(
        "  key exchange          {:>10.2?}\n  histogram blinding     {:>10.2?}\n  inverse computation    {:>10.2?}\n  total setup            {:>10.2?}",
        setup.key_exchange,
        setup.histogram_blinding,
        setup.inverse_computation,
        setup.total()
    );

    // Clipped per-(silo, user) model deltas and per-silo noise, as ULDP-AVG-w would
    // produce them in one round.
    let clipped_deltas: Vec<Vec<Vec<f64>>> = histogram
        .iter()
        .map(|row| {
            row.iter()
                .map(|&n_su| {
                    if n_su == 0 {
                        Vec::new()
                    } else {
                        (0..dim).map(|_| rng.gen_range(-0.1..0.1)).collect()
                    }
                })
                .collect()
        })
        .collect();
    let noises: Vec<Vec<f64>> =
        (0..num_silos).map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect()).collect();

    let (secure, timings) = protocol.weighting_round(&clipped_deltas, &noises, None, &mut rng);
    let reference = protocol.plaintext_reference(&clipped_deltas, &noises, None);

    println!("\nweighting round ({} parameters):", dim);
    println!(
        "  server encryption      {:>10.2?}\n  silo weighted encryption {:>9.2?}\n  aggregation + decrypt  {:>10.2?}\n  total round            {:>10.2?}",
        timings.server_encryption,
        timings.silo_weighting,
        timings.aggregation,
        timings.total()
    );

    let max_err =
        secure.iter().zip(reference.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("\nmax |secure - plaintext| = {max_err:.3e} (precision P = {})", config.precision);
    assert!(max_err < 1e-6, "protocol output diverged from the plaintext aggregation");
    println!(
        "correctness check passed: the encrypted aggregate matches the plaintext weighted sum."
    );
}
