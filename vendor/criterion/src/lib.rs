//! # criterion (in-tree shim)
//!
//! A minimal benchmark harness exposing the subset of the `criterion` API used by the
//! `uldp-bench` benches: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`] and the
//! `criterion_group!` / `criterion_main!` macros. The build environment has no crates.io
//! access; swap the upstream crate back in via `[workspace.dependencies]` for
//! statistically rigorous measurements.
//!
//! Methodology: each benchmark is warmed up once, then run for a fixed number of samples
//! (default 10, configurable per group via [`BenchmarkGroup::sample_size`] or globally
//! via the `CRITERION_SHIM_SAMPLES` environment variable). Mean, minimum and maximum
//! wall-clock time per iteration are printed in a grep-friendly single line.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a parameterised benchmark, e.g. `modpow/2048`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Calls `body` repeatedly and records per-call wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body()); // warm-up, untimed
        self.timings.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            self.timings.push(start.elapsed());
        }
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
}

fn run_one(name: &str, samples: usize, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, timings: Vec::new() };
    routine(&mut bencher);
    if bencher.timings.is_empty() {
        println!("bench {name:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.timings.iter().sum();
    let mean = total / bencher.timings.len() as u32;
    let min = bencher.timings.iter().min().unwrap();
    let max = bencher.timings.iter().max().unwrap();
    println!(
        "bench {name:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({n} samples)",
        n = bencher.timings.len()
    );
}

/// The harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: default_samples() }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: self.samples, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Runs a named benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
///
/// Command-line arguments (`--bench`, `--test`, filters) are accepted and ignored so the
/// binary stays compatible with `cargo bench` and `cargo test --benches` invocation.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` passes `--test`: run nothing, just confirm the
            // binary links and starts, like upstream criterion's test mode.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u32;
        let mut c = Criterion { samples: 3 };
        c.bench_function("unit", |b| b.iter(|| calls += 1));
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_applies_sample_size_and_ids() {
        let mut c = Criterion { samples: 10 };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group
            .sample_size(2)
            .bench_with_input(BenchmarkId::new("f", 7), &5u32, |b, &x| b.iter(|| calls += x));
        group.finish();
        assert_eq!(calls, 15); // (warm-up + 2 samples) * 5
    }
}
