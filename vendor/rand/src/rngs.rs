//! Concrete generators. [`StdRng`] is the only one the workspace uses.

use crate::{RngCore, SeedableRng};

/// A deterministic, seedable pseudo-random generator (xoshiro256++).
///
/// Upstream `rand` backs `StdRng` with ChaCha12; this shim uses xoshiro256++, which is
/// far smaller, has a 256-bit state, passes BigCrush, and is equally deterministic per
/// seed. It is **not** cryptographically secure, and unlike ChaCha its state is
/// recoverable from a short output prefix: Paillier/DH key material drawn from it is
/// suitable for this repository's reproducible benchmarks, not for production use.
/// (Only mask expansion and DH shared-seed derivation in `uldp-crypto` additionally
/// pass through SHA-256.)
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s.iter().all(|&w| w == 0) {
            // The all-zero state is a fixed point of xoshiro; remap it.
            let mut sm = 0x9E37_79B9_7F4A_7C15u64;
            for word in s.iter_mut() {
                *word = crate::splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}
