//! # rand (in-tree shim)
//!
//! The build environment for this repository has no access to crates.io, so this crate
//! re-implements the small slice of the `rand` 0.8 API that the Uldp-FL workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool` and `fill`,
//! * [`SeedableRng`] with the `seed_from_u64` convenience constructor,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (upstream uses ChaCha12;
//!   both are deterministic per seed, which is all the workspace relies on),
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`,
//! * [`distributions::Standard`] / [`distributions::Distribution`].
//!
//! Streams produced under a given seed differ from upstream `rand`, so tests must assert
//! *properties* of sampled data rather than golden values. Swap back to the upstream crate
//! by pointing the `rand` entry of `[workspace.dependencies]` at crates.io.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics when `p` is outside `[0, 1]`, matching upstream `rand` — a misconfigured
    /// sampling rate must fail loudly, not silently train with the wrong privacy budget.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes (convenience alias for [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A reproducible generator constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A range that can be sampled uniformly, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add(<$wide>::draw_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full integer domain: every draw is valid.
                    return <$wide>::draw(rng) as $t;
                }
                start.wrapping_add(<$wide>::draw_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeFrom<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                // Rejection sampling; starts near the domain minimum in practice.
                loop {
                    let v = <$wide>::draw(rng) as $t;
                    if v >= self.start {
                        return v;
                    }
                }
            }
        }
    )*};
}

trait DrawWide: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;

    /// Uniform draw in `[0, span)` via rejection sampling (no modulo bias).
    fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: Self) -> Self;
}

macro_rules! impl_draw_wide {
    ($t:ty, $draw:expr) => {
        impl DrawWide for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                $draw(rng)
            }

            fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: Self) -> Self {
                debug_assert!(span > 0);
                // Accept draws below the largest multiple of `span`; each residue class
                // is then equally likely. Rejection probability is < span / 2^BITS.
                let limit = <$t>::MAX - <$t>::MAX % span;
                loop {
                    let v = Self::draw(rng);
                    if v < limit {
                        return v % span;
                    }
                }
            }
        }
    };
}
impl_draw_wide!(u64, |rng: &mut R| rng.next_u64());
impl_draw_wide!(u128, |rng: &mut R| ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u128 => u128, i128 => u128,
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard.sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..0.5);
            assert!((-2.5..0.5).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
            let w = rng.gen_range(1u128..);
            assert!(w >= 1);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_changes_buffer() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 32];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
