//! Slice helpers: in-place shuffling and random element selection.

use crate::{DrawWide, RngCore};

/// Random operations on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = u64::draw_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = u64::draw_below(rng, self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be the identity");
    }

    #[test]
    fn choose_covers_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1u8, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
