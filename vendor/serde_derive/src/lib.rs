//! Derive macros for the in-tree serde shim. They scan the item for its name and emit an
//! empty impl of the corresponding marker trait. Generic types are intentionally not
//! supported — the workspace derives serde only on concrete structs/enums, and an error
//! here is a prompt to extend the shim (or restore the upstream crates).

use proc_macro::{TokenStream, TokenTree};

fn item_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        if let Some(TokenTree::Punct(p)) = iter.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "serde shim: generic type `{name}` is not supported; \
                                     extend vendor/serde_derive or restore upstream serde"
                                );
                            }
                        }
                        return name;
                    }
                    other => panic!("serde shim: expected type name after `{kw}`, got {other:?}"),
                }
            }
        }
    }
    panic!("serde shim: derive input is not a struct or enum");
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = item_name(input);
    format!("impl serde::{trait_name} for {name} {{}}").parse().unwrap()
}

/// Emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
