//! # proptest (in-tree shim)
//!
//! The build environment has no crates.io access, so this crate implements the slice of
//! the `proptest` API used by `tests/property_tests.rs`:
//!
//! * [`strategy::Strategy`] — implemented for integer/float ranges, `RangeFrom`,
//!   tuples, references and [`collection::vec`],
//! * [`arbitrary::any`] — full-domain integers and `bool`,
//! * [`test_runner::TestRunner`] / [`test_runner::ProptestConfig`] — a deterministic
//!   runner (fixed seed, no shrinking: a failing case reports its inputs via `Debug`
//!   instead of minimising them),
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Swap the upstream crate back in via `[workspace.dependencies]` to regain shrinking
//! and a larger strategy vocabulary.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares property tests: each `fn name(pat in strategy, ...) { body }` item becomes a
/// `#[test]` that samples its strategies `cases` times and runs the body per sample.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                let result = runner.run(&($($strat,)+), |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(e) = result {
                    panic!("{}", e);
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the current case (not the whole
/// process) by returning `Err(TestCaseError)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test; both sides must implement `Debug`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property test; both sides must implement `Debug`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0, z in 1u128..) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z >= 1);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u64..5, 2..6), w in prop::collection::vec(any::<u64>(), 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            for e in &v { prop_assert!(*e < 5); }
        }
    }

    #[test]
    fn runner_reports_failures() {
        let mut runner = crate::test_runner::TestRunner::default();
        let result = runner.run(&(0u64..10,), |(x,)| {
            prop_assert!(x < 5, "x too large: {x}");
            Ok(())
        });
        assert!(result.is_err(), "a case with x >= 5 must fail");
    }
}
