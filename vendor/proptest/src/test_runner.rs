//! The deterministic case runner: [`ProptestConfig`], [`TestRunner`], error types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (a subset of upstream's `Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim uses fewer because debug-profile bigint
        // arithmetic dominates the workspace's property suite.
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Upstream alias: `proptest::test_runner::Config`.
pub type Config = ProptestConfig;

/// A single failing (or rejected) case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Upstream-compatible alias for [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A whole property failing: which case, and why.
#[derive(Clone, Debug)]
pub struct TestError {
    /// Index of the failing case.
    pub case: u32,
    /// Failure message (includes the sampled inputs when `Debug` is available).
    pub message: String,
}

impl std::fmt::Display for TestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "property failed at case {}: {}", self.case, self.message)
    }
}

impl std::error::Error for TestError {}

/// Samples strategies and runs the property body per case.
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::new(ProptestConfig::default())
    }
}

impl TestRunner {
    /// A runner with the given config and a fixed deterministic seed.
    pub fn new(config: ProptestConfig) -> Self {
        // Fixed seed: properties must hold for all inputs, so determinism beats novelty,
        // and failures reproduce across runs.
        TestRunner { config, rng: StdRng::seed_from_u64(0x1d_5ee1) }
    }

    /// Runs `test` against `config.cases` samples of `strategy`.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let rendered = format!("{value:?}");
            if let Err(e) = test(value) {
                return Err(TestError { case, message: format!("{e}\n  inputs: {rendered}") });
            }
        }
        Ok(())
    }
}
