//! [`any`] — full-domain strategies per type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples one value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes; avoids NaN/inf so that
        // comparisons inside properties stay meaningful.
        let magnitude = 10f64.powf(rng.gen_range(-9.0..9.0));
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * magnitude
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
