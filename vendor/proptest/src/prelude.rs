//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Module-path mirror of the crate root (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
