//! The [`Strategy`] trait and its range/tuple implementations.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: strategies sample
/// directly from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A strategy returning a fixed value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
