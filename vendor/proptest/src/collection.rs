//! Collection strategies: [`vec()`].

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A length specification: either exact or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max_exclusive: exact + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range must be non-empty");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range must be non-empty");
        SizeRange { min: *r.start(), max_exclusive: r.end() + 1 }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose length comes from
/// `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
