//! # serde (in-tree shim)
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward-looking markers
//! on its config / history / dataset types — nothing serializes yet (there is no
//! `serde_json` in the build environment). This shim therefore provides the two trait
//! names and derive macros with the upstream import paths, so the annotated types keep
//! compiling unchanged and the real `serde` can be swapped back in via
//! `[workspace.dependencies]` once a registry is reachable.

/// Marker for types that can be serialized (no-op in the shim).
pub trait Serialize {}

/// Marker for types that can be deserialized (no-op in the shim).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
