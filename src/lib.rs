//! # uldp-fl
//!
//! A Rust reproduction of **"Uldp-FL: Federated Learning with Across-Silo User-Level
//! Differential Privacy"** (Kato, Xiong, Takagi, Cao, Yoshikawa — VLDB 2024).
//!
//! This facade crate re-exports the whole workspace behind a single dependency:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `uldp-core` | the FL framework: DEFAULT, ULDP-NAIVE, ULDP-GROUP-k, ULDP-AVG/SGD, ULDP-AVG-w, user-level sub-sampling, Protocol 1 |
//! | [`accounting`] | `uldp-accounting` | RDP accountant, group-privacy conversions, σ calibration |
//! | [`ml`] | `uldp-ml` | models (linear / MLP / Cox), SGD, clipping, metrics |
//! | [`datasets`] | `uldp-datasets` | synthetic Creditcard / MNIST / HeartDisease / TcgaBrca + uniform / zipf allocation |
//! | [`crypto`] | `uldp-crypto` | Paillier, Diffie–Hellman, SHA-256, masking, blinding, fixed-point codec |
//! | [`bigint`] | `uldp-bigint` | arbitrary-precision integers, modular arithmetic, primes |
//! | [`runtime`] | `uldp-runtime` | deterministic worker pool: `par_map`, `par_map_seeded`, `par_reduce` |
//! | [`telemetry`] | `uldp-telemetry` | spans, counters, histograms, privacy ledger; chrome-trace export (`ULDP_TRACE`) |
//!
//! ## Quickstart
//!
//! ```rust
//! use uldp_fl::core::{FlConfig, Method, Trainer, WeightingStrategy};
//! use uldp_fl::datasets::creditcard::{self, CreditcardConfig};
//! use uldp_fl::ml::LinearClassifier;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A small synthetic cross-silo federation (5 silos, 100 users).
//! let mut rng = StdRng::seed_from_u64(0);
//! let dataset = creditcard::generate(
//!     &mut rng,
//!     &CreditcardConfig { train_records: 500, test_records: 100, ..Default::default() },
//! );
//!
//! // Train with ULDP-AVG: user-level DP across silos, σ = 5, C = 1.
//! let mut config = FlConfig::recommended(
//!     Method::UldpAvg { weighting: WeightingStrategy::Uniform },
//!     dataset.num_silos,
//! );
//! config.rounds = 2;
//! let model = Box::new(LinearClassifier::new(dataset.feature_dim(), 2));
//! let history = Trainer::new(config, dataset, model).run();
//!
//! assert!(history.final_epsilon().is_finite());
//! ```

pub use uldp_accounting as accounting;
pub use uldp_bigint as bigint;
pub use uldp_core as core;
pub use uldp_crypto as crypto;
pub use uldp_datasets as datasets;
pub use uldp_ml as ml;
pub use uldp_runtime as runtime;
pub use uldp_telemetry as telemetry;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Touch one item from every re-exported crate to catch wiring regressions.
        let _ = crate::accounting::DEFAULT_DELTA;
        let _ = crate::bigint::BigUint::one();
        let _ = crate::core::FlConfig::default();
        let _ = crate::crypto::sha256(b"uldp");
        let _ = crate::datasets::Allocation::Uniform;
        let _ = crate::ml::Sgd::new(0.1);
        assert!(crate::runtime::Runtime::global().threads() >= 1);
        let _ = crate::telemetry::enabled();
        assert!(!crate::VERSION.is_empty());
    }
}
